package thermal

import (
	"math"
	"testing"

	"nocsprint/internal/floorplan"
	"nocsprint/internal/mesh"
	"nocsprint/internal/sprint"
)

const (
	activeTileW = 6.45
	darkTileW   = 0.51
)

func tilePowers(active []int, plan *floorplan.Plan) []float64 {
	p := make([]float64, 16)
	for i := range p {
		p[i] = darkTileW
	}
	for _, id := range active {
		slot := id
		if plan != nil {
			slot = plan.Pos(id)
		}
		p[slot] = activeTileW
	}
	return p
}

func fullPower() []float64 {
	p := make([]float64, 16)
	for i := range p {
		p[i] = activeTileW
	}
	return p
}

// TestFig12PeakTemperatures pins the calibrated grid to the paper's
// published peaks: 358.3 K (full-sprinting), 347.79 K (4-core fine-grained,
// clustered), 343.81 K (4-core with thermal-aware floorplanning).
func TestFig12PeakTemperatures(t *testing.T) {
	cfg := DefaultGridConfig()
	m := mesh.New(4, 4)
	order := sprint.ActivationOrder(m, 0, sprint.Euclidean)
	plan, err := floorplan.Thermal(m, order)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		power []float64
		want  float64
	}{
		{"full-sprinting", fullPower(), 358.3},
		{"fine-grained clustered", tilePowers(order[:4], nil), 347.79},
		{"thermal-aware floorplan", tilePowers(order[:4], plan), 343.81},
	}
	var peaks []float64
	for _, tc := range cases {
		hm, err := SteadyState(cfg, tc.power)
		if err != nil {
			t.Fatal(err)
		}
		peak, _, _ := hm.Peak()
		peaks = append(peaks, peak)
		if math.Abs(peak-tc.want) > 1.5 {
			t.Errorf("%s: peak %.2f K, paper %.2f K (tolerance 1.5 K)", tc.name, peak, tc.want)
		}
	}
	if !(peaks[0] > peaks[1] && peaks[1] > peaks[2]) {
		t.Errorf("peak ordering wrong: %v", peaks)
	}
}

func TestFullSprintHotspotInCenter(t *testing.T) {
	cfg := DefaultGridConfig()
	hm, err := SteadyState(cfg, fullPower())
	if err != nil {
		t.Fatal(err)
	}
	_, px, py := hm.Peak()
	// Peak must be away from the rim (paper: "overheated spot in the
	// center" despite uniform power).
	if px < hm.W/4 || px >= 3*hm.W/4 || py < hm.H/4 || py >= 3*hm.H/4 {
		t.Errorf("uniform-power peak at (%d,%d), expected central region of %dx%d", px, py, hm.W, hm.H)
	}
	// Corners must be cooler than the centre.
	if hm.At(0, 0) >= hm.At(hm.W/2, hm.H/2) {
		t.Error("corner not cooler than center under uniform power")
	}
}

func TestSteadyStateZeroPowerIsAmbient(t *testing.T) {
	cfg := DefaultGridConfig()
	hm, err := SteadyState(cfg, make([]float64, 16))
	if err != nil {
		t.Fatal(err)
	}
	for _, temp := range hm.T {
		if math.Abs(temp-cfg.AmbientK) > 1e-6 {
			t.Fatalf("zero power gives %.3f K, want ambient %.3f", temp, cfg.AmbientK)
		}
	}
}

func TestSteadyStateMonotoneInPower(t *testing.T) {
	cfg := DefaultGridConfig()
	p1 := tilePowers([]int{0, 1, 4, 5}, nil)
	hm1, err := SteadyState(cfg, p1)
	if err != nil {
		t.Fatal(err)
	}
	p2 := append([]float64(nil), p1...)
	for i := range p2 {
		p2[i] *= 1.5
	}
	hm2, err := SteadyState(cfg, p2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hm1.T {
		if hm2.T[i] <= hm1.T[i] {
			t.Fatal("scaling power up did not raise every cell temperature")
		}
	}
}

func TestSteadyStateValidation(t *testing.T) {
	cfg := DefaultGridConfig()
	if _, err := SteadyState(cfg, make([]float64, 3)); err == nil {
		t.Error("wrong power-map size accepted")
	}
	bad := make([]float64, 16)
	bad[2] = -1
	if _, err := SteadyState(cfg, bad); err == nil {
		t.Error("negative power accepted")
	}
	bad[2] = math.NaN()
	if _, err := SteadyState(cfg, bad); err == nil {
		t.Error("NaN power accepted")
	}
	cfg.RvCell = -1
	if _, err := SteadyState(cfg, make([]float64, 16)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	cfg := DefaultGridConfig()
	cfg.Sub = 4 // keep the transient run fast
	power := tilePowers([]int{0, 1, 4, 5}, nil)
	want, err := SteadyState(cfg, power)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetTilePower(power); err != nil {
		t.Fatal(err)
	}
	dt := g.MaxStableStep()
	for g.Time() < 60 { // a minute of simulated time reaches steady state
		if err := g.Step(dt); err != nil {
			t.Fatal(err)
		}
	}
	got := g.Snapshot()
	pw, _, _ := want.Peak()
	pg, _, _ := got.Peak()
	if math.Abs(pw-pg) > 0.5 {
		t.Errorf("transient peak %.2f K vs steady %.2f K", pg, pw)
	}
}

func TestTransientTemperatureRisesMonotonically(t *testing.T) {
	cfg := DefaultGridConfig()
	cfg.Sub = 2
	g, err := NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetTilePower(fullPower()); err != nil {
		t.Fatal(err)
	}
	dt := g.MaxStableStep()
	prev := g.Snapshot().Mean()
	for i := 0; i < 200; i++ {
		if err := g.Step(dt); err != nil {
			t.Fatal(err)
		}
		m := g.Snapshot().Mean()
		if m < prev-1e-9 {
			t.Fatal("mean temperature dropped during heating")
		}
		prev = m
	}
}

func TestGridStepValidation(t *testing.T) {
	g, err := NewGrid(DefaultGridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Step(0); err == nil {
		t.Error("zero dt accepted")
	}
	if err := g.Step(g.MaxStableStep() * 10); err == nil {
		t.Error("unstable dt accepted")
	}
	if err := g.SetTilePower(make([]float64, 2)); err == nil {
		t.Error("wrong power-map size accepted")
	}
}

func TestTileMean(t *testing.T) {
	cfg := DefaultGridConfig()
	power := tilePowers([]int{0}, nil)
	hm, err := SteadyState(cfg, power)
	if err != nil {
		t.Fatal(err)
	}
	hot := hm.TileMean(0, 0, cfg.Sub)
	cold := hm.TileMean(3, 3, cfg.Sub)
	if hot <= cold {
		t.Errorf("active tile mean %.2f not hotter than dark tile %.2f", hot, cold)
	}
}

func TestLumpedSustainablePower(t *testing.T) {
	l := DefaultLumped()
	sus := l.SustainablePower()
	// Nominal single-core chip power (~25.4 W) must be sustainable; full
	// 16-core sprinting (~106 W core-side alone) must not.
	if sus < 25.4 {
		t.Errorf("sustainable power %.1f W below nominal chip power", sus)
	}
	if sus > 106 {
		t.Errorf("sustainable power %.1f W would make full sprinting sustainable", sus)
	}
	d, sustainable, err := l.SprintDuration(sus * 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !sustainable || !math.IsInf(d, 1) {
		t.Error("sub-TDP power should sprint forever")
	}
}

func TestSprintPhasesFullPower(t *testing.T) {
	l := DefaultLumped()
	ph, err := l.SprintPhases(106.2)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Sustainable {
		t.Fatal("full sprinting should not be sustainable")
	}
	for i, d := range []float64{ph.Phase1, ph.Phase2, ph.Phase3} {
		if d <= 0 || math.IsInf(d, 1) {
			t.Fatalf("phase %d duration %v not finite positive", i+1, d)
		}
	}
	// Paper assumption: the chip sustains full sprinting for about one
	// second in the worst case.
	if total := ph.Total(); total < 0.3 || total > 3 {
		t.Errorf("full-sprint duration %.2f s, want ~1 s", total)
	}
}

func TestSprintDurationMonotoneInPower(t *testing.T) {
	l := DefaultLumped()
	prev := math.Inf(1)
	for _, p := range []float64{45, 60, 80, 106} {
		d, sustainable, err := l.SprintDuration(p)
		if err != nil {
			t.Fatal(err)
		}
		if sustainable {
			t.Fatalf("%g W should not be sustainable", p)
		}
		if d >= prev {
			t.Errorf("duration at %g W (%v s) not shorter than at lower power (%v s)", p, d, prev)
		}
		prev = d
	}
}

func TestSprintPhasesValidation(t *testing.T) {
	l := DefaultLumped()
	if _, err := l.SprintPhases(-1); err == nil {
		t.Error("negative power accepted")
	}
	if _, err := l.SprintPhases(math.NaN()); err == nil {
		t.Error("NaN power accepted")
	}
	bad := l
	bad.PCM.MeltK = bad.MaxK + 10
	if _, err := bad.SprintPhases(50); err == nil {
		t.Error("melt above max accepted")
	}
	bad = l
	bad.RthKperW = 0
	if _, err := bad.SprintPhases(50); err == nil {
		t.Error("zero Rth accepted")
	}
}

// TestTimelineMatchesPhases integrates the Figure 1 curve numerically and
// checks the plateau against the closed-form phase durations.
func TestTimelineMatchesPhases(t *testing.T) {
	l := DefaultLumped()
	const power = 106.2
	ph, err := l.SprintPhases(power)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := l.Timeline(power, 1e-4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Find melt onset and completion in the trace.
	var meltStart, meltEnd float64 = -1, -1
	for _, s := range samples {
		if meltStart < 0 && s.TempK >= l.PCM.MeltK-1e-6 {
			meltStart = s.TimeS
		}
		if meltEnd < 0 && s.MeltFraction >= 1 {
			meltEnd = s.TimeS
		}
	}
	if meltStart < 0 || meltEnd < 0 {
		t.Fatal("timeline never melted the PCM")
	}
	if math.Abs(meltStart-ph.Phase1) > 0.02*ph.Phase1+1e-3 {
		t.Errorf("melt onset %.4f s vs closed-form phase 1 %.4f s", meltStart, ph.Phase1)
	}
	if math.Abs((meltEnd-meltStart)-ph.Phase2) > 0.03*ph.Phase2+1e-3 {
		t.Errorf("melt duration %.4f s vs closed-form phase 2 %.4f s", meltEnd-meltStart, ph.Phase2)
	}
	// Temperature during the plateau must hold at the melt point.
	for _, s := range samples {
		if s.TimeS > meltStart+0.01 && s.TimeS < meltEnd-0.01 {
			if math.Abs(s.TempK-l.PCM.MeltK) > 0.1 {
				t.Fatalf("temperature %.2f K off the melt plateau at t=%.3f", s.TempK, s.TimeS)
			}
		}
	}
	// The trace ends at the junction limit.
	last := samples[len(samples)-1]
	if last.TempK < l.MaxK-0.5 {
		t.Errorf("timeline ended at %.2f K before reaching MaxK %.2f", last.TempK, l.MaxK)
	}
}

func TestTimelineValidation(t *testing.T) {
	l := DefaultLumped()
	if _, err := l.Timeline(50, 0, 1, 1); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := l.Timeline(50, 1e-3, 0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := l.Timeline(50, 1e-3, 1, 0); err == nil {
		t.Error("zero sample interval accepted")
	}
}
