// Package traffic provides the synthetic traffic patterns used to exercise
// the NoC simulator (uniform random, transpose, bit-complement, hotspot,
// nearest-neighbour, fixed permutation) plus helpers to map a pattern onto
// an arbitrary subset of mesh nodes — which is how sprint regions and the
// paper's "randomly mapped" full-sprinting baseline are driven.
package traffic

import (
	"fmt"
	"math/rand"
)

// Pattern chooses a destination for each injected packet. Implementations
// are defined over the index space 0..n-1 of an ordered node list; the Set
// type maps indices back to mesh node ids.
type Pattern interface {
	// Pick returns the destination index for a packet injected at source
	// index src (0 <= src < N()). Pick never returns src for patterns that
	// can avoid self-traffic.
	Pick(src int, rng *rand.Rand) int
	// N returns the number of endpoints the pattern is defined over.
	N() int
	// Name identifies the pattern in reports.
	Name() string
}

// Uniform is uniform-random traffic: each packet picks a destination
// uniformly among the other endpoints.
type Uniform struct {
	n int
}

// NewUniform returns uniform-random traffic over n endpoints (n >= 2).
func NewUniform(n int) *Uniform {
	if n < 2 {
		panic(fmt.Sprintf("traffic: uniform needs >= 2 endpoints, got %d", n))
	}
	return &Uniform{n: n}
}

// Pick implements Pattern.
func (u *Uniform) Pick(src int, rng *rand.Rand) int {
	d := rng.Intn(u.n - 1)
	if d >= src {
		d++
	}
	return d
}

// N implements Pattern.
func (u *Uniform) N() int { return u.n }

// Name implements Pattern.
func (u *Uniform) Name() string { return "uniform" }

// Transpose sends index (treated as a w×w matrix entry) to its transpose;
// diagonal endpoints fall back to uniform-random.
type Transpose struct {
	w int
	u *Uniform
}

// NewTranspose returns matrix-transpose traffic over a w×w index grid.
func NewTranspose(w int) *Transpose {
	if w < 2 {
		panic("traffic: transpose needs w >= 2")
	}
	return &Transpose{w: w, u: NewUniform(w * w)}
}

// Pick implements Pattern.
func (t *Transpose) Pick(src int, rng *rand.Rand) int {
	x, y := src%t.w, src/t.w
	dst := x*t.w + y
	if dst == src {
		return t.u.Pick(src, rng)
	}
	return dst
}

// N implements Pattern.
func (t *Transpose) N() int { return t.w * t.w }

// Name implements Pattern.
func (t *Transpose) Name() string { return "transpose" }

// BitComplement sends index i to (n-1)-i.
type BitComplement struct {
	n int
	u *Uniform
}

// NewBitComplement returns bit-complement traffic over n endpoints.
func NewBitComplement(n int) *BitComplement {
	if n < 2 {
		panic("traffic: bit-complement needs >= 2 endpoints")
	}
	return &BitComplement{n: n, u: NewUniform(n)}
}

// Pick implements Pattern.
func (b *BitComplement) Pick(src int, rng *rand.Rand) int {
	dst := b.n - 1 - src
	if dst == src {
		return b.u.Pick(src, rng)
	}
	return dst
}

// N implements Pattern.
func (b *BitComplement) N() int { return b.n }

// Name implements Pattern.
func (b *BitComplement) Name() string { return "bitcomp" }

// Hotspot sends a fraction of traffic to one hot endpoint (the master node
// in sprint scenarios, where the memory controller lives) and the rest
// uniformly.
type Hotspot struct {
	n        int
	hot      int
	fraction float64
	u        *Uniform
}

// NewHotspot returns hotspot traffic over n endpoints where each packet
// targets endpoint hot with probability fraction, else uniform-random.
func NewHotspot(n, hot int, fraction float64) *Hotspot {
	if n < 2 || hot < 0 || hot >= n {
		panic("traffic: bad hotspot parameters")
	}
	if fraction < 0 || fraction > 1 {
		panic("traffic: hotspot fraction outside [0,1]")
	}
	return &Hotspot{n: n, hot: hot, fraction: fraction, u: NewUniform(n)}
}

// Pick implements Pattern.
func (h *Hotspot) Pick(src int, rng *rand.Rand) int {
	if src != h.hot && rng.Float64() < h.fraction {
		return h.hot
	}
	return h.u.Pick(src, rng)
}

// N implements Pattern.
func (h *Hotspot) N() int { return h.n }

// Name implements Pattern.
func (h *Hotspot) Name() string { return "hotspot" }

// Neighbor sends each packet to the next endpoint (i+1 mod n), modelling
// streaming pipeline traffic.
type Neighbor struct {
	n int
}

// NewNeighbor returns nearest-neighbour ring traffic over n endpoints.
func NewNeighbor(n int) *Neighbor {
	if n < 2 {
		panic("traffic: neighbor needs >= 2 endpoints")
	}
	return &Neighbor{n: n}
}

// Pick implements Pattern.
func (p *Neighbor) Pick(src int, _ *rand.Rand) int { return (src + 1) % p.n }

// N implements Pattern.
func (p *Neighbor) N() int { return p.n }

// Name implements Pattern.
func (p *Neighbor) Name() string { return "neighbor" }

// Permutation sends each endpoint's packets to a fixed randomly-drawn
// partner (a derangement when possible).
type Permutation struct {
	perm []int
}

// NewPermutation returns a fixed random permutation pattern over n
// endpoints drawn from rng.
func NewPermutation(n int, rng *rand.Rand) *Permutation {
	if n < 2 {
		panic("traffic: permutation needs >= 2 endpoints")
	}
	perm := rng.Perm(n)
	// Resolve fixed points by swapping with a neighbour so no endpoint
	// talks to itself.
	for i, p := range perm {
		if p == i {
			j := (i + 1) % n
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	return &Permutation{perm: perm}
}

// Pick implements Pattern.
func (p *Permutation) Pick(src int, _ *rand.Rand) int { return p.perm[src] }

// N implements Pattern.
func (p *Permutation) N() int { return len(p.perm) }

// Name implements Pattern.
func (p *Permutation) Name() string { return "permutation" }

// Set maps a pattern's index space onto concrete mesh node ids. It is how
// the same uniform-random pattern drives a 4-node sprint region, an 8-node
// region, or the paper's full-sprinting baseline where k communicating
// cores are scattered randomly over the full 16-node mesh.
type Set struct {
	nodes []int
	index map[int]int
}

// NewSet returns a Set over the given node ids (which must be distinct).
func NewSet(nodes []int) *Set {
	s := &Set{nodes: append([]int(nil), nodes...), index: make(map[int]int, len(nodes))}
	for i, id := range s.nodes {
		if _, dup := s.index[id]; dup {
			panic(fmt.Sprintf("traffic: duplicate node %d in set", id))
		}
		s.index[id] = i
	}
	return s
}

// RandomSet draws k distinct node ids from the n mesh nodes using rng —
// the paper's random mapping for the full-sprinting baseline (averaged over
// ten samples in Fig. 11).
func RandomSet(n, k int, rng *rand.Rand) *Set {
	if k < 1 || k > n {
		panic(fmt.Sprintf("traffic: cannot draw %d of %d nodes", k, n))
	}
	return NewSet(rng.Perm(n)[:k])
}

// Nodes returns the node ids in index order (a copy).
func (s *Set) Nodes() []int { return append([]int(nil), s.nodes...) }

// Size returns the number of endpoints.
func (s *Set) Size() int { return len(s.nodes) }

// Node returns the node id at pattern index i.
func (s *Set) Node(i int) int { return s.nodes[i] }

// Index returns the pattern index of node id, or -1 if the node is not in
// the set.
func (s *Set) Index(id int) int {
	if i, ok := s.index[id]; ok {
		return i
	}
	return -1
}

// PickNode draws a destination node id for a packet injected at node src
// using pattern p over this set. It panics if src is not in the set or the
// pattern size mismatches the set size.
func (s *Set) PickNode(p Pattern, src int, rng *rand.Rand) int {
	if p.N() != s.Size() {
		panic(fmt.Sprintf("traffic: pattern over %d endpoints used with set of %d", p.N(), s.Size()))
	}
	i := s.Index(src)
	if i < 0 {
		panic(fmt.Sprintf("traffic: source node %d not in set", src))
	}
	return s.nodes[p.Pick(i, rng)]
}
