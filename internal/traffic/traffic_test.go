package traffic

import (
	"math"
	"math/rand"
	"testing"
)

func TestUniformNeverSelf(t *testing.T) {
	u := NewUniform(8)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		src := i % 8
		d := u.Pick(src, rng)
		if d == src {
			t.Fatal("uniform picked self")
		}
		if d < 0 || d >= 8 {
			t.Fatal("uniform out of range")
		}
		counts[d]++
	}
	// Roughly balanced destinations.
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("destination %d picked %d times of 8000", i, c)
		}
	}
	if u.N() != 8 || u.Name() != "uniform" {
		t.Error("uniform metadata wrong")
	}
}

func TestUniformPanicsTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewUniform(1) did not panic")
		}
	}()
	NewUniform(1)
}

func TestTranspose(t *testing.T) {
	tr := NewTranspose(4)
	rng := rand.New(rand.NewSource(2))
	// (x,y)=(1,2) index 9 -> (2,1) index 6.
	if d := tr.Pick(9, rng); d != 6 {
		t.Errorf("transpose(9) = %d, want 6", d)
	}
	// Diagonal falls back to uniform, never self.
	for i := 0; i < 100; i++ {
		if d := tr.Pick(5, rng); d == 5 {
			t.Fatal("transpose diagonal picked self")
		}
	}
	if tr.N() != 16 || tr.Name() != "transpose" {
		t.Error("transpose metadata wrong")
	}
}

func TestBitComplement(t *testing.T) {
	b := NewBitComplement(16)
	rng := rand.New(rand.NewSource(3))
	if d := b.Pick(0, rng); d != 15 {
		t.Errorf("bitcomp(0) = %d", d)
	}
	if d := b.Pick(5, rng); d != 10 {
		t.Errorf("bitcomp(5) = %d", d)
	}
	// Odd-sized set: the midpoint falls back to uniform.
	b2 := NewBitComplement(5)
	for i := 0; i < 50; i++ {
		if d := b2.Pick(2, rng); d == 2 {
			t.Fatal("bitcomp midpoint picked self")
		}
	}
}

func TestHotspot(t *testing.T) {
	h := NewHotspot(16, 0, 0.5)
	rng := rand.New(rand.NewSource(4))
	hot := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if d := h.Pick(5, rng); d == 0 {
			hot++
		}
	}
	// P(hot) = 0.5 + 0.5*(1/15) ≈ 0.533.
	frac := float64(hot) / trials
	if math.Abs(frac-0.533) > 0.03 {
		t.Errorf("hotspot fraction %.3f, want ~0.533", frac)
	}
	// The hotspot node itself sends uniform traffic.
	for i := 0; i < 100; i++ {
		if d := h.Pick(0, rng); d == 0 {
			t.Fatal("hotspot node picked self")
		}
	}
	for _, bad := range []func(){
		func() { NewHotspot(1, 0, 0.5) },
		func() { NewHotspot(8, 9, 0.5) },
		func() { NewHotspot(8, 0, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad hotspot accepted")
				}
			}()
			bad()
		}()
	}
}

func TestNeighbor(t *testing.T) {
	n := NewNeighbor(4)
	if n.Pick(0, nil) != 1 || n.Pick(3, nil) != 0 {
		t.Error("neighbor ring wrong")
	}
}

func TestPermutationIsDerangement(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := NewPermutation(7, rand.New(rand.NewSource(seed)))
		seen := make([]bool, 7)
		for i := 0; i < 7; i++ {
			d := p.Pick(i, nil)
			if d == i {
				t.Fatalf("seed %d: fixed point at %d", seed, i)
			}
			if seen[d] {
				t.Fatalf("seed %d: not a permutation", seed)
			}
			seen[d] = true
		}
	}
}

func TestSetMapping(t *testing.T) {
	s := NewSet([]int{3, 9, 12, 0})
	if s.Size() != 4 || s.Node(1) != 9 || s.Index(12) != 2 || s.Index(5) != -1 {
		t.Error("set mapping wrong")
	}
	rng := rand.New(rand.NewSource(5))
	u := NewUniform(4)
	for i := 0; i < 200; i++ {
		dst := s.PickNode(u, 9, rng)
		if dst == 9 {
			t.Fatal("PickNode returned source")
		}
		if s.Index(dst) < 0 {
			t.Fatal("PickNode returned node outside set")
		}
	}
}

func TestSetPanics(t *testing.T) {
	for _, bad := range []func(){
		func() { NewSet([]int{1, 1}) },
		func() { NewSet([]int{1, 2}).PickNode(NewUniform(3), 1, rand.New(rand.NewSource(0))) },
		func() { NewSet([]int{1, 2}).PickNode(NewUniform(2), 7, rand.New(rand.NewSource(0))) },
		func() { RandomSet(4, 5, rand.New(rand.NewSource(0))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestRandomSet(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := RandomSet(16, 4, rng)
	if s.Size() != 4 {
		t.Fatal("wrong size")
	}
	seen := map[int]bool{}
	for _, id := range s.Nodes() {
		if id < 0 || id >= 16 || seen[id] {
			t.Fatal("bad random set")
		}
		seen[id] = true
	}
}

func TestPatternMetadataAndPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if b := NewBitComplement(16); b.N() != 16 || b.Name() != "bitcomp" {
		t.Error("bitcomp metadata wrong")
	}
	if h := NewHotspot(16, 0, 0.3); h.N() != 16 || h.Name() != "hotspot" {
		t.Error("hotspot metadata wrong")
	}
	if nb := NewNeighbor(4); nb.N() != 4 || nb.Name() != "neighbor" {
		t.Error("neighbor metadata wrong")
	}
	if p := NewPermutation(4, rng); p.N() != 4 || p.Name() != "permutation" {
		t.Error("permutation metadata wrong")
	}
	for i, bad := range []func(){
		func() { NewTranspose(1) },
		func() { NewBitComplement(1) },
		func() { NewNeighbor(1) },
		func() { NewPermutation(1, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("constructor %d accepted degenerate size", i)
				}
			}()
			bad()
		}()
	}
}
